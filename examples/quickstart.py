#!/usr/bin/env python3
"""Quickstart: a durable user-accounts database in ~30 lines.

The paper's motivating example is exactly this: the kind of small
structured database (like /etc/passwd) every operating system carries
around.  The database is an ordinary dict-of-records in memory; every
update is one log write; restarting the process recovers everything.

Run it twice to see durability across runs:

    python examples/quickstart.py
    python examples/quickstart.py
"""

import tempfile
import os

from repro import Database, LocalFS, OperationRegistry, PreconditionFailed

# 1. Declare the update operations (the "schema" of the log).
ops = OperationRegistry()


@ops.operation("create_account")
def create_account(root, user, uid, home):
    root[user] = {"uid": uid, "home": home, "groups": []}


@create_account.precondition
def _create_pre(root, user, uid, home):
    if user in root:
        raise PreconditionFailed(f"account {user!r} already exists")


@ops.operation("add_to_group")
def add_to_group(root, user, group):
    root[user]["groups"].append(group)


@add_to_group.precondition
def _group_pre(root, user, group):
    if user not in root:
        raise PreconditionFailed(f"no account {user!r}")


@ops.operation("remove_account")
def remove_account(root, user):
    del root[user]


def main() -> None:
    directory = os.path.join(tempfile.gettempdir(), "smalldb-quickstart")
    db = Database(LocalFS(directory), initial=dict, operations=ops)

    print(f"database directory: {directory}")
    print(f"accounts recovered from previous runs: "
          f"{db.enquire(lambda root: len(root))}")

    # 2. Updates: single-shot transactions, durable when the call returns.
    run_number = db.enquire(lambda root: len(root))
    user = f"user{run_number:03d}"
    db.update("create_account", user, 1000 + run_number, f"/home/{user}")
    db.update("add_to_group", user, "staff")
    print(f"created {user}")

    # A precondition failure aborts before anything reaches the disk.
    try:
        db.update("create_account", user, 9999, "/tmp")
    except PreconditionFailed as exc:
        print(f"rejected cleanly: {exc}")

    # 3. Enquiries: plain functions of the in-memory structure.
    accounts = db.enquire(lambda root: sorted(root))
    print(f"all accounts: {accounts}")

    # 4. A checkpoint bounds future restart time (run it "nightly").
    version = db.checkpoint()
    print(f"checkpointed as version {version}; "
          f"files: {sorted(os.listdir(directory))}")
    db.close()


if __name__ == "__main__":
    main()
