#!/usr/bin/env python3
"""Automatic group commit: concurrent updaters sharing commit fsyncs.

The paper notes that beating one disk write per update means "arranging
to record multiple commit records in a single log entry".  This demo runs
the same concurrent update load twice on the simulated 1987 substrate —
once with the seed's per-update fsync, once with the commit coordinator —
and prints what the stats instrumentation shows: far fewer fsyncs, the
batch-size histogram, and the modelled time saved.  It finishes with the
opt-in relaxed mode and the daemon that bounds its at-risk window.
"""

import threading

from repro import CommitPolicy, GroupCommitDaemon
from repro.core import Database, OperationRegistry
from repro.sim import SimClock
from repro.storage import SimFS

THREADS = 8
UPDATES_PER_THREAD = 20

ops = OperationRegistry()


@ops.operation("set")
def op_set(root, key, value):
    root[key] = value


def run_load(durability: str, commit_policy: CommitPolicy | None = None):
    clock = SimClock()
    db = Database(
        SimFS(clock=clock),
        initial=dict,
        operations=ops,
        durability=durability,
        commit_policy=commit_policy,
    )
    start = clock.now()
    gate = threading.Barrier(THREADS)

    def worker(t: int) -> None:
        gate.wait()
        for i in range(UPDATES_PER_THREAD):
            db.update("set", f"key-{t}-{i}", i)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return clock.now() - start, db


def main() -> None:
    total = THREADS * UPDATES_PER_THREAD
    print(f"{THREADS} threads x {UPDATES_PER_THREAD} updates on the 1987 disk\n")

    immediate_s, db = run_load("immediate")
    snap = db.stats.snapshot()
    print("durability='immediate' (one fsync per update, the seed protocol):")
    print(f"  modelled time {immediate_s:6.2f} s   fsyncs {snap['log_fsyncs']}/{total}")

    group_s, db = run_load(
        "group",
        CommitPolicy(max_batch=THREADS, max_hold_seconds=0.05),
    )
    snap = db.stats.snapshot()
    print("\ndurability='group' (commit coordinator, still durable on return):")
    print(f"  modelled time {group_s:6.2f} s   fsyncs {snap['log_fsyncs']}/{total}")
    print(f"  batch histogram {snap['commit_batch_histogram']}")
    print(f"  mean batch {snap['mean_commit_batch']:.1f}   "
          f"speedup {immediate_s / group_s:.1f}x")

    # Relaxed mode: update() returns before the fsync; a daemon (or any
    # flush/checkpoint/close) makes the backlog durable shortly after.
    clock = SimClock()
    db = Database(SimFS(clock=clock), initial=dict, operations=ops,
                  durability="relaxed")
    with GroupCommitDaemon(db, flush_interval=0.01):
        for i in range(10):
            db.update("set", f"fast-{i}", i)
    snap = db.stats.snapshot()
    print("\ndurability='relaxed' + GroupCommitDaemon:")
    print(f"  relaxed updates {snap['relaxed_updates']}   "
          f"backlog now {db.pending_commits()} (daemon flushed it)")


if __name__ == "__main__":
    main()
