#!/usr/bin/env python3
"""The audit trail: "the log files form a complete audit trail" (§4).

Runs an archiving database through several checkpoint epochs, then uses
the audit reader to answer the questions an operator actually asks:
what happened, who touched this key, and what did the database look like
at an earlier point in time.  Finishes with the fsck/dump operator tools.
"""

import io

from repro.core import ArchivingDatabase, AuditReader, OperationRegistry
from repro.sim import SimClock
from repro.storage import SimFS
from repro.tools import dump_directory, fsck_directory

ops = OperationRegistry()


@ops.operation("set")
def op_set(root, key, value):
    root[key] = value


@ops.operation("del")
def op_del(root, key):
    del root[key]


def main() -> None:
    fs = SimFS(clock=SimClock())
    db = ArchivingDatabase(fs, initial=dict, operations=ops)

    # Three epochs of history.
    db.update("set", "quota/alice", 100)
    db.update("set", "quota/bob", 50)
    db.checkpoint()
    db.update("set", "quota/alice", 250)
    db.update("del", "quota/bob")
    db.checkpoint()
    db.update("set", "quota/carol", 75)

    print("current state:", db.enquire(lambda root: dict(root)))

    reader = AuditReader(fs)
    print(f"\ncomplete audit trail ({reader.count()} updates):")
    for record in reader.records():
        print("  " + record.describe())

    print("\nhistory of quota/alice:")
    for record in reader.history_of(
        lambda r: r.args and r.args[0] == "quota/alice"
    ):
        print("  " + record.describe())

    # Time travel: the state as of the end of epoch 1.
    past: dict = {}
    for record in reader.records():
        if record.epoch > 1:
            break
        ops.get(record.operation).apply(past, *record.args, **record.kwargs)
    print(f"\nstate as of the first checkpoint: {past}")

    # Operator tools over the same directory.
    print("\nfsck verdict:")
    out = io.StringIO()
    fsck_directory(fs).write(out)
    print("  " + "\n  ".join(out.getvalue().strip().splitlines()))

    print("\ndirectory dump (abridged):")
    out = io.StringIO()
    dump_directory(fs, out=out, limit=2)
    print("  " + "\n  ".join(out.getvalue().strip().splitlines()[:12]))


if __name__ == "__main__":
    main()
