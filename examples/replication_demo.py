#!/usr/bin/env python3
"""Replicated name service: propagation, conflicts, replica restoration.

Three name server replicas accept updates independently, gossip to
convergence, resolve a concurrent conflict identically everywhere, and
finally rebuild a replica whose disk has failed from one of its peers —
losing only the single update that had never propagated, exactly the
paper's stated bound.
"""

from repro import Replica, ReplicaGroup, restore_replica
from repro.sim import SimClock
from repro.storage import SimFS


def fresh_fs() -> SimFS:
    return SimFS(clock=SimClock())


def main() -> None:
    a = Replica(fresh_fs(), "a")
    b = Replica(fresh_fs(), "b")
    c = Replica(fresh_fs(), "c")
    group = ReplicaGroup([a, b, c])

    # Independent updates at each replica.
    a.bind("hosts/juniper", {"addr": "10.0.0.1"})
    b.bind("hosts/acacia", {"addr": "10.0.0.2"})
    c.bind("users/wobber", {"office": "src-2"})
    print("before gossip:", [replica.count() for replica in (a, b, c)])

    rounds = group.converge()
    print(f"after {rounds} gossip round(s):",
          [replica.count() for replica in (a, b, c)],
          "consistent:", group.is_consistent())

    # A concurrent conflict: all three bind the same name.
    for replica in (a, b, c):
        replica.bind("services/printer", f"spooler-on-{replica.replica_id}")
    group.converge()
    winners = {replica.lookup("services/printer") for replica in (a, b, c)}
    print(f"conflicting binds resolved identically everywhere: {winners}")

    # An unbind propagates as a tombstone.
    a.unbind("hosts/acacia")
    group.converge()
    print("acacia visible anywhere:",
          any(replica.exists("hosts/acacia") for replica in (a, b, c)))

    # Replica b suffers a hard error after one unpropagated update.
    b.bind("users/only-on-b", "doomed")
    b.close()
    restored = restore_replica(fresh_fs(), "b", source=a)
    print(f"replica b restored from a: {restored.count()} names; "
          f"unpropagated update lost: "
          f"{not restored.exists('users/only-on-b')}")

    # The restored replica rejoins the group seamlessly.
    group2 = ReplicaGroup([a, restored, c])
    restored.bind("users/back-online", True)
    group2.converge()
    print("group consistent after rejoining:", group2.is_consistent())


if __name__ == "__main__":
    main()
