#!/usr/bin/env python3
"""The checkpoint-frequency trade-off, on the simulated 1987 machine.

Replays a day of paper-envelope traffic (10,000 updates) under different
checkpoint policies and reports what the system manager cares about:
checkpoints taken, seconds of update unavailability, and restart time
after a crash at the end of the day.  The paper's conclusion — "a simple
scheme of making a checkpoint each night will suffice" — falls out of
the numbers.
"""

from repro import MICROVAX_II, NameServer
from repro.core import EveryNUpdates, LogSizeThreshold, Never, Periodic
from repro.sim import NameWorkload, SimClock
from repro.storage import SimFS

UPDATES = 1_000          # scaled-down day (x10 for the paper's 10,000)
DAY_SECONDS = 8_640.0    # scaled-down day length, same update rate


def run_policy(label, policy) -> None:
    clock = SimClock()
    fs = SimFS(clock=clock)
    server = NameServer(fs, cost_model=MICROVAX_II, policy=policy)
    workload = NameWorkload(seed=1987, population=UPDATES, value_bytes=300)

    gap = DAY_SECONDS / UPDATES
    for index in range(UPDATES):
        path = workload.names[index % len(workload.names)]
        server.bind(path, workload.value_for(path))
        clock.advance(gap)  # traffic spread across the (scaled) day

    checkpoints = server.stats.checkpoints
    blocked = checkpoints * server.stats.last_checkpoint_seconds

    fs.crash()
    start = clock.now()
    recovered = NameServer(fs, cost_model=MICROVAX_II)
    restart = clock.now() - start
    replayed = recovered.stats.snapshot()["entries_replayed"]

    print(
        f"{label:28s} checkpoints={checkpoints:3d}  "
        f"blocked={blocked:7.1f}s  "
        f"restart={restart:7.1f}s (replaying {replayed} entries)"
    )


def main() -> None:
    print(f"{UPDATES} updates over a {DAY_SECONDS:.0f}s simulated day\n")
    run_policy("Never (manual only)", Never())
    run_policy("EveryNUpdates(100)", EveryNUpdates(100))
    run_policy("LogSizeThreshold(256 KB)", LogSizeThreshold(256 * 1024))
    run_policy("Periodic(1/4 day)", Periodic(DAY_SECONDS / 4))
    run_policy("'nightly' (once per day)", Periodic(DAY_SECONDS))
    print(
        "\nThe trade-off: more checkpoints -> shorter restart, more "
        "blocked time.\nAt this update rate the nightly policy keeps both "
        "acceptable — the paper's conclusion."
    )


if __name__ == "__main__":
    main()
