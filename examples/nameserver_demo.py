#!/usr/bin/env python3
"""The paper's worked example: a name server, served over real TCP RPC.

Starts a name server on a real directory, exports it through the RPC
package on a TCP socket, then drives it from a generated client stub:
binds, lookups, browsing, typed remote errors, and a crash-free restart.
"""

import os
import tempfile

from repro import (
    NAMESERVER_INTERFACE,
    NameNotFound,
    NameServer,
    RemoteNameServer,
    RpcServer,
    TcpServerThread,
    TcpTransport,
)


def main() -> None:
    from repro.storage import LocalFS

    directory = os.path.join(tempfile.gettempdir(), "smalldb-nameserver")
    server = NameServer(LocalFS(directory))

    rpc = RpcServer()
    rpc.export(NAMESERVER_INTERFACE, server)

    with TcpServerThread(rpc) as listener:
        print(f"name server listening on {listener.host}:{listener.port}")
        transport = TcpTransport(listener.host, listener.port)
        remote = RemoteNameServer(transport)

        # Bind a little org tree: values are arbitrary typed structures.
        remote.bind("com/dec/src/printer3", {"host": "src-gw", "port": 515})
        remote.bind("com/dec/src/fileserver", {"host": "juniper", "volumes": ["a", "b"]})
        remote.bind("com/cmu/cs/jones", ("Michael B. Jones", "Wean Hall"))
        print(f"bound 3 names; total now {remote.count()}")

        # Enquiries and browsing.
        print("lookup printer3:", remote.lookup("com/dec/src/printer3"))
        print("browse com/dec/src:", remote.list_dir("com/dec/src"))
        print("subtree com:", remote.read_subtree("com"))

        # Typed errors cross the wire as themselves.
        try:
            remote.lookup("com/dec/src/teleporter")
        except NameNotFound as exc:
            print(f"remote error, typed: {exc}")

        # Replace a whole subtree in one single-shot transaction.
        remote.write_subtree(
            "com/dec/src",
            [("printer3", {"host": "src-gw2", "port": 515}), ("scanner1", {})],
        )
        print("after write_subtree:", remote.list_dir("com/dec/src"))

        transport.close()

    # Restart: everything recovered from checkpoint + log.
    server.close()
    reopened = NameServer(LocalFS(directory))
    print(f"after restart: {reopened.count()} names, "
          f"printer3 -> {reopened.lookup('com/dec/src/printer3')}")
    stats = reopened.stats.snapshot()
    print(f"restart replayed {stats['entries_replayed']} log entries")
    reopened.checkpoint()
    reopened.close()


if __name__ == "__main__":
    main()
