#!/usr/bin/env python3
"""Crash recovery, demonstrated at every reachable disk state.

Uses the simulated file system to crash a database at each durable disk
event of a small update script — including mid-page, tearing the page in
flight — and shows recovery landing on exactly the committed prefix every
time.  Then demonstrates the two hard-failure recoveries of the paper's
section 4: a damaged log entry and a damaged checkpoint.
"""

from repro.core import Database, OperationRegistry
from repro.core.version import checkpoint_name
from repro.sim import CrashPointSweep, SimClock
from repro.storage import SimFS

ops = OperationRegistry()


@ops.operation("set")
def op_set(root, key, value):
    root[key] = value


def sweep_demo() -> None:
    steps = [
        ("update", "set", ("alpha", 1)),
        ("update", "set", ("blob", "x" * 900)),  # spans multiple pages
        ("checkpoint",),
        ("update", "set", ("alpha", 2)),
        ("update", "set", ("omega", [1, 2, 3])),
    ]
    print("== exhaustive crash-point sweep ==")
    for padded in (True, False):
        sweep = CrashPointSweep(steps, ops, pad_log_to_page=padded)
        result = sweep.run()
        result.assert_clean()
        label = "padded log (default)" if padded else "paper's unpadded log"
        print(
            f"{label:24s}: {result.runs} crash states, "
            f"0 recovery failures, "
            f"{result.torn_commit_losses} committed entries lost to torn pages"
        )


def hard_error_demo() -> None:
    print("\n== hard (media) failures ==")

    # Damaged log entry, skipped when updates are independent.
    fs = SimFS(clock=SimClock())
    db = Database(fs, initial=dict, operations=ops)
    for i in range(5):
        value = "v" * 600 if i == 2 else i
        db.update("set", f"key{i}", value)
    fs.crash()
    fs.corrupt("logfile1", 512 * 2 + 600)  # key2's payload page
    recovered = Database(
        fs, initial=dict, operations=ops, ignore_damaged_log=True
    )
    state = recovered.enquire(lambda root: sorted(root))
    print(f"log page destroyed -> skipped 1 entry, recovered: {state}")

    # Damaged checkpoint, healed from the retained previous version.
    fs = SimFS(clock=SimClock())
    db = Database(fs, initial=dict, operations=ops, keep_versions=2)
    db.update("set", "epoch", 1)
    db.checkpoint()
    db.update("set", "late", True)
    fs.crash()
    fs.corrupt(checkpoint_name(2), 0)
    recovered = Database(fs, initial=dict, operations=ops, keep_versions=2)
    print(
        f"checkpoint destroyed -> previous checkpoint + both logs replayed, "
        f"recovered: {recovered.enquire(lambda root: dict(root))} "
        f"(used previous: {recovered.last_recovery.used_previous_checkpoint})"
    )


def main() -> None:
    sweep_demo()
    hard_error_demo()


if __name__ == "__main__":
    main()
