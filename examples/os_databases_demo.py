#!/usr/bin/env python3
"""The paper's section-1 databases, end to end.

    Examples of these operating system databases include records of user
    accounts, network name servers, network configuration information
    and file directories.

This demo runs all three non-name-server examples from the apps package
over one simulated machine, crashes it, and shows every application
recovering — user accounts with their uid allocator, network
configuration with its attributed audit trail, and the sharded file
directory service with its per-volume checkpoints.
"""

from repro.apps import AccountRegistry, DirectoryService, NetConfig
from repro.sim import SimClock
from repro.storage import PrefixedFS, SimFS


def main() -> None:
    # One simulated disk, three databases, namespaced side by side.
    fs = SimFS(clock=SimClock())
    accounts = AccountRegistry(PrefixedFS(fs, "accounts"))
    net = NetConfig(PrefixedFS(fs, "net"))
    dirs = DirectoryService(PrefixedFS(fs, "dirs"), num_shards=2)

    # -- user accounts -------------------------------------------------------
    accounts.create("birrell", shell="/bin/csh")
    accounts.create("jones")
    accounts.create("wobber")
    accounts.create_group("src")
    for name in ("birrell", "wobber"):
        accounts.add_to_group("src", name)
    print("accounts:")
    for line in accounts.passwd_lines():
        print("  " + line)
    print("  src members:", accounts.members_of("src"))

    # -- network configuration -------------------------------------------------
    net.add_host("juniper", "10.0.0.1", changed_by="wobber")
    net.add_host("acacia", "10.0.0.2", changed_by="birrell")
    net.add_alias("juniper", "mailhub", changed_by="wobber")
    net.set_route("0.0.0.0/0", "10.0.0.1", changed_by="ops")
    print("\n/etc/hosts replacement:")
    for line in net.hosts_file().splitlines():
        print("  " + line)

    # -- file directories ---------------------------------------------------------
    dirs.mkdir("vol1")
    dirs.mkdir("vol1/src")
    dirs.mkdir("vol2")
    dirs.create("vol1/src/server.mod", size=46_000, mtime=1.0)
    dirs.create("vol2/paper.tex", size=88_000, mtime=2.0)
    dirs.checkpoint_volume("vol1")  # one shard only
    print("\nfile directories:", dirs.listdir(), "-", dirs.total_entries(), "entries")

    # -- the machine halts -----------------------------------------------------------
    fs.crash()
    print("\n*** machine crashed; restarting all three databases ***\n")

    accounts2 = AccountRegistry(PrefixedFS(fs, "accounts"))
    net2 = NetConfig(PrefixedFS(fs, "net"))
    dirs2 = DirectoryService(PrefixedFS(fs, "dirs"), num_shards=2)

    print("accounts recovered:", accounts2.names())
    print("next uid (allocator recovered):", accounts2.create("newhire"))
    print("mailhub still resolves:", net2.resolve("mailhub"))
    print("config change history:")
    for line in net2.changes():
        print("  " + line)
    print("directories recovered:", dirs2.total_entries(), "entries;",
          "server.mod:", dirs2.stat("vol1/src/server.mod"))


if __name__ == "__main__":
    main()
